package hsgd

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"hsgd/internal/als"
	"hsgd/internal/cd"
	"hsgd/internal/core"
	"hsgd/internal/engine"
	"hsgd/internal/model"
	"hsgd/internal/nomad"
	"hsgd/internal/obs"
	"hsgd/internal/progress"
	"hsgd/internal/sgd"
)

// Progress-event types, shared by every trainer (see internal/progress for
// the full field documentation). Events are delivered synchronously from
// points where the factors are quiescent; a slow callback pauses training.
type (
	// ProgressEvent is one observation of a running training session.
	ProgressEvent = progress.Event
	// ProgressKind discriminates progress events.
	ProgressKind = progress.Kind
	// ProgressFunc consumes progress events; nil means "no observer".
	ProgressFunc = progress.Func
)

// The progress-event kinds.
const (
	ProgressEpoch       = progress.KindEpoch
	ProgressCheckpoint  = progress.KindCheckpoint
	ProgressDone        = progress.KindDone
	ProgressInterrupted = progress.KindInterrupted
)

// Trace is a span recorder capturing one epoch's block-schedule timeline
// as Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev): per-
// executor task spans, the batched pipeline's overlapped background packs,
// steals, barrier waits, evaluations and checkpoint writes. Attach one via
// TrainOptions.Trace (capability Trace), then dump it with WriteFile after
// training returns.
type Trace = obs.Trace

// NewTrace returns an empty, disarmed epoch-trace recorder; the engine
// arms it for exactly the epoch TrainOptions.TraceEpoch selects.
func NewTrace() *Trace { return obs.NewTrace() }

// TrainOptions is the shared configuration of every Trainer. Whether a
// particular trainer honors a field is declared by its Capabilities; an
// option the trainer cannot honor fails with an error wrapping
// ErrUnsupported rather than being silently dropped.
type TrainOptions struct {
	// Threads is the worker goroutine count; <1 means GOMAXPROCS. The cd
	// trainer is inherently sequential (CCD++ sweeps share a residual) and
	// ignores it.
	Threads int
	Params  Params // K, LambdaP/LambdaQ, Gamma, Iters
	// Schedule overrides the fixed Params.Gamma learning rate (capability
	// Schedules; see NewSchedule). Adaptive schedules (bold driver)
	// receive the per-epoch loss.
	Schedule Schedule
	Seed     int64

	// Test, when non-nil, is evaluated for the report's FinalRMSE and the
	// per-epoch History trajectory.
	Test *Matrix
	// TargetRMSE stops training early once the test RMSE reaches it
	// (capability EarlyStop).
	TargetRMSE float64

	// Progress, when non-nil, receives one ProgressEpoch event per epoch
	// boundary (plus ProgressCheckpoint per snapshot and a final
	// ProgressDone/ProgressInterrupted). All trainers support it.
	Progress ProgressFunc

	// Resume warm-starts from existing factors (a checkpoint loaded with
	// LoadFactors); StartEpoch is how many epochs they already trained, so
	// schedules continue where they left off (capability Resume).
	Resume     *Factors
	StartEpoch int

	// CheckpointPath makes the trainer write atomic mid-train model
	// snapshots every CheckpointEvery epochs (default 1) in the format the
	// serving layer's snapshot watcher hot-swaps; an interrupted run
	// writes one final checkpoint before returning (capability
	// Checkpoint).
	CheckpointPath  string
	CheckpointEvery int

	// InnerSweeps is the CCD++ per-dimension refinement count (capability
	// InnerSweeps; default 1).
	InnerSweeps int

	// Sim configures the simulated heterogeneous system (capability
	// Simulated); nil picks the default HSGD* pipeline with one default
	// GPU when the sim trainer runs.
	Sim *SimConfig

	// Hetero configures the real heterogeneous executor engine (capability
	// Heterogeneous); nil picks one batched executor with the online
	// cost-model-driven split when the hetero trainer runs.
	Hetero *HeteroConfig

	// Trace, when non-nil, records the block-schedule timeline of one
	// epoch — the one selected by TraceEpoch, 1-based relative to
	// StartEpoch (values below 1 record the first) — into the given
	// recorder (capability Trace). Dump it afterwards with Trace.WriteFile.
	Trace      *Trace
	TraceEpoch int
}

// HeteroConfig tunes the "hetero" trainer: HSGD* scheduling on live
// hardware with two executor classes (internal/device). The zero value
// (and a nil *HeteroConfig) means one batched executor, the paper's
// nc+2·ng+1 super-block layout, dynamic stealing on, and an α split
// re-solved online from measured per-class cost models.
type HeteroConfig struct {
	// BatchedWorkers is the throughput-optimized executor count (the GPU
	// stand-ins); <1 means 1. CPU executors fill the rest of the
	// TrainOptions.Threads budget, keeping the total worker count equal to
	// an fpsgd run at the same Threads.
	BatchedWorkers int
	// Superblock overrides the layout's column-band count (super-block
	// granularity); 0 keeps the paper's nc+2·ng+1.
	Superblock int
	// StaticOnly disables the dynamic stealing phase (HSGD*-M on real
	// hardware).
	StaticOnly bool
	// Alpha fixes the batched class's share of the rating mass; <=0 lets
	// the online profiling phase solve it from measured throughput.
	Alpha float64
}

// SimConfig selects the pipeline and device models of the "sim" trainer.
// The zero value (and a nil *SimConfig) means HSGD* on one default GPU with
// the default CPU model.
type SimConfig struct {
	// Algorithm selects one of the paper's pipelines; empty means HSGDStar.
	Algorithm Algorithm
	// GPUs is the simulated GPU count; <1 means 1.
	GPUs int
	// GPU and CPU are the simulated device models; zero values pick
	// DefaultGPU() / DefaultCPU().
	GPU GPUConfig
	CPU CPUConfig
	// DeviceScale scales the devices' size-dependent constants to match a
	// scaled-down dataset (see GPUConfig.Scaled); <=0 leaves them as-is.
	DeviceScale float64
}

// TrainReport is the shared result summary of every Trainer.
type TrainReport struct {
	Algorithm string
	// Seconds is the training time: wall clock for the real trainers,
	// virtual seconds for the sim trainer.
	Seconds   float64
	Epochs    int     // epochs (outer iterations) completed
	FinalRMSE float64 // test RMSE, when a test set was supplied
	History   []EvalPoint
	// TotalUpdates counts the work done in the trainer's own unit:
	// ratings processed (fpsgd, hogwild, sim), k×k ridge solves (als), or
	// scalar coordinate updates (cd).
	TotalUpdates int64
	Checkpoints  int  // mid-train snapshots written
	Interrupted  bool // run was stopped by context cancellation/deadline
}

// Trainer is the unified entry point over the training algorithms in this
// repository: lock-striped FPSGD (the engine), lock-free Hogwild,
// alternating least squares, coordinate descent, and the paper's simulated
// heterogeneous pipelines all train a rating matrix into Factors behind the
// same options and report types.
type Trainer interface {
	// Train fits factors to the training matrix. The returned report's
	// fields beyond Seconds/Epochs/FinalRMSE are filled as far as the
	// algorithm supports them (see Capabilities).
	//
	// Training is interruptible: when ctx is cancelled or its deadline
	// passes, the trainer stops at its next safe boundary (block claim,
	// pass, iteration, or simulated task) and returns the best-so-far
	// factors and a partial report (Interrupted=true) TOGETHER WITH the
	// context error — the one case where a non-nil error accompanies
	// non-nil results. Hard failures return (nil, nil, err).
	Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error)
	// Name returns the algorithm identifier accepted by NewTrainer.
	Name() string
	// Capabilities declares which TrainOptions this trainer honors.
	Capabilities() Capabilities
}

// NewTrainer returns the named training algorithm: "fpsgd" (the lock-striped
// parallel SGD engine — the default choice), "hetero" (the paper's HSGD* on
// real hardware: CPU plus batched executor classes over the nonuniform
// two-region layout; see TrainOptions.Hetero), "hogwild" (lock-free parallel
// SGD), "nomad" (NOMAD-style asynchronous column circulation in one process —
// the single-node twin of the multi-process trainer behind
// cmd/hsgd-train -distributed), "als" (alternating least squares), "cd"
// (CCD++ coordinate descent), or "sim" (the paper's heterogeneous CPU+GPU
// pipelines on the simulated machine; see TrainOptions.Sim).
func NewTrainer(name string) (Trainer, error) {
	switch name {
	case "fpsgd", "":
		return fpsgdTrainer{}, nil
	case "hetero":
		return heteroTrainer{}, nil
	case "hogwild":
		return hogwildTrainer{}, nil
	case "nomad":
		return nomadTrainer{}, nil
	case "als":
		return alsTrainer{}, nil
	case "cd":
		return cdTrainer{}, nil
	case "sim":
		return simTrainer{}, nil
	}
	return nil, fmt.Errorf("hsgd: unknown trainer %q (want %s)", name, strings.Join(TrainerNames(), "|"))
}

// TrainerNames returns the algorithm identifiers NewTrainer accepts, in
// preference order — the introspection companion to Capabilities, and the
// single source of the name set (the NewTrainer error and the CLI flag help
// derive from it).
func TrainerNames() []string {
	return []string{"fpsgd", "hetero", "hogwild", "nomad", "als", "cd", "sim"}
}

// NewSchedule returns the named learning-rate schedule starting at gamma:
// "fixed" (the paper's setting), "inverse" (Robbins-Monro γ0/(1+βt)), "chin"
// (the decay of Chin et al. [43]), or "bold" (bold driver, adapting to the
// observed loss at every epoch boundary).
func NewSchedule(name string, gamma float64) (Schedule, error) {
	g := float32(gamma)
	switch name {
	case "fixed", "":
		return sgd.FixedSchedule(g), nil
	case "inverse":
		return sgd.InverseDecay{Gamma0: g, Beta: 0.3}, nil
	case "chin":
		return sgd.ChinSchedule{Gamma0: g, Alpha: 20}, nil
	case "bold":
		return sgd.NewBoldDriver(g), nil
	}
	return nil, fmt.Errorf("hsgd: unknown schedule %q (want fixed|inverse|chin|bold)", name)
}

// LoadFactors reads a trained model (or mid-train checkpoint) written in the
// HFAC snapshot format — the resume half of the checkpoint pipeline.
func LoadFactors(path string) (*Factors, error) { return model.LoadFile(path) }

// --- shared helpers ---

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func threadCount(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// recordEpoch closes one epoch in a baseline trainer's report: evaluate the
// test set into History/FinalRMSE (the factors are quiescent at every call
// site) and emit the ProgressEpoch event.
func recordEpoch(opt *TrainOptions, rep *TrainReport, f *Factors, start time.Time) {
	if opt.Test != nil {
		rmse := model.RMSE(f, opt.Test)
		rep.History = append(rep.History, EvalPoint{
			Time: time.Since(start).Seconds(), Epoch: rep.Epochs, RMSE: rmse,
		})
		rep.FinalRMSE = rmse
	}
	emitProgress(opt, ProgressEpoch, rep, start)
}

func emitProgress(opt *TrainOptions, kind ProgressKind, rep *TrainReport, start time.Time) {
	if opt.Progress == nil {
		return
	}
	elapsed := time.Since(start)
	var rate float64
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(rep.TotalUpdates) / s
	}
	opt.Progress(ProgressEvent{
		Kind:          kind,
		Algorithm:     rep.Algorithm,
		Time:          time.Now(),
		Epoch:         rep.Epochs,
		TotalEpochs:   opt.Params.Iters,
		RMSE:          rep.FinalRMSE,
		TotalUpdates:  rep.TotalUpdates,
		UpdatesPerSec: rate,
		Elapsed:       elapsed,
		Checkpoints:   rep.Checkpoints,
	})
}

// finishBaseline seals a baseline trainer's report: stamp the duration,
// classify the error (interruption vs hard failure), and emit the final
// event. It returns what the trainer's Train should return.
func finishBaseline(ctx context.Context, opt *TrainOptions, rep *TrainReport, f *Factors, start time.Time, err error) (*TrainReport, *Factors, error) {
	rep.Seconds = time.Since(start).Seconds()
	if err != nil {
		if ctx.Err() == nil {
			return nil, nil, err // hard failure, not a cancellation
		}
		rep.Interrupted = true
		if opt.Test != nil && len(rep.History) == 0 {
			rep.FinalRMSE = model.RMSE(f, opt.Test)
		}
		emitProgress(opt, ProgressInterrupted, rep, start)
		return rep, f, err
	}
	if opt.Test != nil && len(rep.History) == 0 {
		rep.FinalRMSE = model.RMSE(f, opt.Test)
	}
	emitProgress(opt, ProgressDone, rep, start)
	return rep, f, nil
}

// --- fpsgd (the engine) ---

type fpsgdTrainer struct{}

func (fpsgdTrainer) Name() string { return "fpsgd" }

func (fpsgdTrainer) Capabilities() Capabilities {
	return Capabilities{
		Algorithm:   "fpsgd",
		Schedules:   true,
		EarlyStop:   true,
		Checkpoint:  true,
		Resume:      true,
		SplitLambda: true,
		History:     true,
		Trace:       true,
	}
}

func (t fpsgdTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	rep, f, err := engine.Train(orBackground(ctx), train, engine.Options{
		Threads:         opt.Threads,
		Params:          opt.Params,
		Schedule:        opt.Schedule,
		Seed:            opt.Seed,
		Test:            opt.Test,
		TargetRMSE:      opt.TargetRMSE,
		Init:            opt.Resume,
		StartEpoch:      opt.StartEpoch,
		CheckpointPath:  opt.CheckpointPath,
		CheckpointEvery: opt.CheckpointEvery,
		Progress:        opt.Progress,
		Trace:           opt.Trace,
		TraceEpoch:      opt.TraceEpoch,
	})
	if rep == nil {
		return nil, nil, err
	}
	out := &TrainReport{
		Algorithm:    "fpsgd",
		Seconds:      rep.Seconds,
		Epochs:       rep.Epochs,
		FinalRMSE:    rep.FinalRMSE,
		TotalUpdates: rep.TotalUpdates,
		Checkpoints:  rep.Checkpoints,
		Interrupted:  rep.Interrupted,
	}
	for _, p := range rep.History {
		out.History = append(out.History, EvalPoint{Time: p.Time, Epoch: p.Epoch, RMSE: p.RMSE})
	}
	return out, f, err
}

// --- hetero (the two-class executor engine) ---

type heteroTrainer struct{}

func (heteroTrainer) Name() string { return "hetero" }

func (heteroTrainer) Capabilities() Capabilities {
	return Capabilities{
		Algorithm:     "hetero",
		Schedules:     true,
		EarlyStop:     true,
		Checkpoint:    true,
		Resume:        true,
		SplitLambda:   true,
		History:       true,
		Heterogeneous: true,
		Trace:         true,
	}
}

func (t heteroTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	cfg := opt.Hetero
	if cfg == nil {
		cfg = &HeteroConfig{}
	}
	rep, f, err := engine.TrainHetero(orBackground(ctx), train, engine.HeteroOptions{
		Options: engine.Options{
			Threads:         opt.Threads,
			Params:          opt.Params,
			Schedule:        opt.Schedule,
			Seed:            opt.Seed,
			Test:            opt.Test,
			TargetRMSE:      opt.TargetRMSE,
			Init:            opt.Resume,
			StartEpoch:      opt.StartEpoch,
			CheckpointPath:  opt.CheckpointPath,
			CheckpointEvery: opt.CheckpointEvery,
			Progress:        opt.Progress,
			Trace:           opt.Trace,
			TraceEpoch:      opt.TraceEpoch,
		},
		BatchedWorkers: cfg.BatchedWorkers,
		Superblock:     cfg.Superblock,
		StaticOnly:     cfg.StaticOnly,
		Alpha:          cfg.Alpha,
	})
	if rep == nil {
		return nil, nil, err
	}
	out := &TrainReport{
		Algorithm:    "hetero",
		Seconds:      rep.Seconds,
		Epochs:       rep.Epochs,
		FinalRMSE:    rep.FinalRMSE,
		TotalUpdates: rep.TotalUpdates,
		Checkpoints:  rep.Checkpoints,
		Interrupted:  rep.Interrupted,
	}
	for _, p := range rep.History {
		out.History = append(out.History, EvalPoint{Time: p.Time, Epoch: p.Epoch, RMSE: p.RMSE})
	}
	return out, f, err
}

// --- hogwild ---

type hogwildTrainer struct{}

func (hogwildTrainer) Name() string { return "hogwild" }

func (hogwildTrainer) Capabilities() Capabilities {
	return Capabilities{
		Algorithm:   "hogwild",
		Schedules:   true,
		SplitLambda: true,
		History:     true,
	}
}

func (t hogwildTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	rng := rand.New(rand.NewSource(opt.Seed))
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rng)
	workers := threadCount(opt.Threads)
	schedule := opt.Schedule
	if schedule == nil {
		schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	// Shuffle a copy so worker shards are unbiased without mutating the
	// caller's rating order.
	shuffled := train.Clone()
	shuffled.Shuffle(rng)

	// Adaptive schedules (bold driver) observe the epoch loss like the
	// engine does: the test RMSE when a test set exists, otherwise the
	// RMSE over a fixed training sample.
	observer, _ := schedule.(engine.LossObserver)
	var lossSample *Matrix
	if observer != nil && opt.Test == nil {
		lossSample = engine.LossSample(shuffled)
	}

	start := time.Now()
	rep := &TrainReport{Algorithm: "hogwild"}
	onePass := opt.Params
	onePass.Iters = 1
	var runErr error
	for it := 0; it < opt.Params.Iters; it++ {
		// Hogwild has no barrier of its own inside a pass; cancellation is
		// observed between passes, where every worker has joined.
		if ctx.Err() != nil {
			runErr = context.Cause(ctx)
			break
		}
		onePass.Gamma = schedule.Rate(it)
		sgd.TrainHogwild(shuffled, f, onePass, workers)
		rep.Epochs = it + 1
		rep.TotalUpdates += int64(shuffled.NNZ())
		recordEpoch(&opt, rep, f, start)
		if observer != nil {
			loss := rep.FinalRMSE
			if opt.Test == nil {
				loss = model.RMSE(f, lossSample)
			}
			observer.Observe(loss)
		}
	}
	return finishBaseline(ctx, &opt, rep, f, start, runErr)
}

// --- nomad (single-process column circulation) ---

type nomadTrainer struct{}

func (nomadTrainer) Name() string { return "nomad" }

func (nomadTrainer) Capabilities() Capabilities {
	return Capabilities{
		Algorithm:   "nomad",
		Schedules:   true,
		EarlyStop:   true,
		SplitLambda: true,
		History:     true,
	}
}

func (t nomadTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	// Same seed → same init as dist.Coordinate, so a single-process run and
	// a distributed run of the same configuration start from one model.
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	workers := threadCount(opt.Threads)
	schedule := opt.Schedule
	if schedule == nil {
		schedule = sgd.FixedSchedule(opt.Params.Gamma)
	}
	observer, _ := schedule.(engine.LossObserver)
	var lossSample *Matrix
	if observer != nil && opt.Test == nil {
		lossSample = engine.LossSample(train)
	}

	start := time.Now()
	rep := &TrainReport{Algorithm: "nomad"}
	var runErr error
	for it := 0; it < opt.Params.Iters; it++ {
		// Column hand-offs are asynchronous inside a round; cancellation is
		// observed at round boundaries, where the factors are quiescent.
		if ctx.Err() != nil {
			runErr = context.Cause(ctx)
			break
		}
		err := nomad.Train(train, f, nomad.Params{
			K:       opt.Params.K,
			LambdaP: opt.Params.LambdaP,
			LambdaQ: opt.Params.LambdaQ,
			Gamma:   schedule.Rate(it),
			Workers: workers,
			Rounds:  1,
			Seed:    opt.Seed + int64(it),
		})
		if err != nil {
			return nil, nil, err
		}
		rep.Epochs = it + 1
		rep.TotalUpdates += int64(train.NNZ())
		recordEpoch(&opt, rep, f, start)
		if observer != nil {
			loss := rep.FinalRMSE
			if opt.Test == nil {
				loss = model.RMSE(f, lossSample)
			}
			observer.Observe(loss)
		}
		if opt.TargetRMSE > 0 && rep.FinalRMSE <= opt.TargetRMSE {
			break
		}
	}
	return finishBaseline(ctx, &opt, rep, f, start, runErr)
}

// --- als ---

type alsTrainer struct{}

func (alsTrainer) Name() string { return "als" }

func (alsTrainer) Capabilities() Capabilities {
	return Capabilities{Algorithm: "als", History: true}
}

func (t alsTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	start := time.Now()
	rep := &TrainReport{Algorithm: "als"}
	solves, err := als.Train(ctx, train, f, als.Params{
		K:       opt.Params.K,
		Lambda:  opt.Params.LambdaP,
		Iters:   opt.Params.Iters,
		Workers: threadCount(opt.Threads),
		Progress: func(iter int, solves int64) {
			rep.Epochs = iter
			rep.TotalUpdates = solves
			recordEpoch(&opt, rep, f, start)
		},
	})
	rep.TotalUpdates = solves
	return finishBaseline(ctx, &opt, rep, f, start, err)
}

// --- cd ---

type cdTrainer struct{}

func (cdTrainer) Name() string { return "cd" }

func (cdTrainer) Capabilities() Capabilities {
	return Capabilities{Algorithm: "cd", InnerSweeps: true, History: true}
}

func (t cdTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	start := time.Now()
	rep := &TrainReport{Algorithm: "cd"}
	updates, err := cd.Train(ctx, train, f, cd.Params{
		K:      opt.Params.K,
		Lambda: opt.Params.LambdaP,
		Iters:  opt.Params.Iters,
		Inner:  opt.InnerSweeps,
		Progress: func(iter int, updates int64) {
			rep.Epochs = iter
			rep.TotalUpdates = updates
			recordEpoch(&opt, rep, f, start)
		},
	})
	rep.TotalUpdates = updates
	return finishBaseline(ctx, &opt, rep, f, start, err)
}

// --- sim (the paper's heterogeneous pipelines) ---

type simTrainer struct{}

func (simTrainer) Name() string { return "sim" }

func (simTrainer) Capabilities() Capabilities {
	return Capabilities{
		Algorithm:   "sim",
		Schedules:   true,
		EarlyStop:   true,
		SplitLambda: true,
		History:     true,
		Simulated:   true,
	}
}

func (t simTrainer) Train(ctx context.Context, train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := validateOptions(t.Capabilities(), opt); err != nil {
		return nil, nil, err
	}
	cfg := opt.Sim
	if cfg == nil {
		cfg = &SimConfig{}
	}
	alg := cfg.Algorithm
	if alg == "" {
		alg = HSGDStar
	}
	gpus := cfg.GPUs
	if gpus < 1 {
		gpus = 1
	}
	gcfg, ccfg := cfg.GPU, cfg.CPU
	if gcfg == (GPUConfig{}) {
		gcfg = DefaultGPU()
	}
	if ccfg == (CPUConfig{}) {
		ccfg = DefaultCPU()
	}
	if cfg.DeviceScale > 0 {
		gcfg = gcfg.Scaled(cfg.DeviceScale)
		ccfg = ccfg.Scaled(cfg.DeviceScale)
	}
	rep, f, err := core.Train(orBackground(ctx), train, opt.Test, core.Options{
		Algorithm:  alg,
		CPUThreads: threadCount(opt.Threads),
		GPUs:       gpus,
		Params:     opt.Params,
		Schedule:   opt.Schedule,
		GPU:        gcfg,
		CPU:        ccfg,
		Seed:       opt.Seed,
		TargetRMSE: opt.TargetRMSE,
		Progress:   opt.Progress,
	})
	if rep == nil {
		return nil, nil, err
	}
	out := &TrainReport{
		Algorithm:    "sim",
		Seconds:      rep.VirtualSeconds, // virtual, not wall clock
		Epochs:       rep.Epochs,
		FinalRMSE:    rep.FinalRMSE,
		History:      rep.History,
		TotalUpdates: rep.TotalUpdates,
		Interrupted:  rep.Interrupted,
	}
	return out, f, err
}

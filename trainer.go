package hsgd

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"hsgd/internal/als"
	"hsgd/internal/cd"
	"hsgd/internal/engine"
	"hsgd/internal/model"
	"hsgd/internal/sgd"
)

// TrainOptions is the shared configuration of every Trainer. Fields a
// particular algorithm does not use are documented on its constructor name
// below; fields it cannot honor (checkpointing on trainers without epoch
// snapshots) are rejected rather than silently dropped.
type TrainOptions struct {
	// Threads is the worker goroutine count; <1 means GOMAXPROCS. The cd
	// trainer is inherently sequential (CCD++ sweeps share a residual) and
	// ignores it.
	Threads int
	Params  Params // K, LambdaP/LambdaQ, Gamma, Iters
	// Schedule overrides the fixed Params.Gamma learning rate (FPSGD and
	// Hogwild; see NewSchedule). Adaptive schedules (bold driver) receive
	// the per-epoch loss on the FPSGD trainer.
	Schedule Schedule
	Seed     int64

	// Test, when non-nil, is evaluated for the report's FinalRMSE; the
	// FPSGD trainer additionally records the per-epoch trajectory.
	Test *Matrix
	// TargetRMSE stops FPSGD training early once the test RMSE reaches it.
	TargetRMSE float64

	// Resume warm-starts from existing factors (a checkpoint loaded with
	// LoadFactors); StartEpoch is how many epochs they already trained, so
	// schedules continue where they left off. FPSGD only.
	Resume     *Factors
	StartEpoch int

	// CheckpointPath makes the trainer write atomic mid-train model
	// snapshots every CheckpointEvery epochs (default 1) in the format the
	// serving layer's snapshot watcher hot-swaps. FPSGD only.
	CheckpointPath  string
	CheckpointEvery int

	// InnerSweeps is the CCD++ per-dimension refinement count (CD only;
	// default 1).
	InnerSweeps int
}

// TrainReport is the shared result summary of every Trainer.
type TrainReport struct {
	Algorithm    string
	Seconds      float64 // wall-clock training time
	Epochs       int     // epochs (outer iterations) completed
	FinalRMSE    float64 // test RMSE, when a test set was supplied
	History      []EvalPoint
	TotalUpdates int64 // ratings processed (SGD-family trainers)
	Checkpoints  int   // mid-train snapshots written
}

// Trainer is the unified entry point over the training algorithms in this
// repository: lock-striped FPSGD (the engine), lock-free Hogwild,
// alternating least squares, and coordinate descent all train a rating
// matrix into Factors behind the same options and report types.
type Trainer interface {
	// Train fits factors to the training matrix. The returned report's
	// fields beyond Seconds/Epochs/FinalRMSE are filled as far as the
	// algorithm supports them.
	Train(train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error)
	// Name returns the algorithm identifier accepted by NewTrainer.
	Name() string
}

// NewTrainer returns the named training algorithm: "fpsgd" (the lock-striped
// parallel SGD engine — the default choice), "hogwild" (lock-free parallel
// SGD), "als" (alternating least squares), or "cd" (CCD++ coordinate
// descent).
func NewTrainer(name string) (Trainer, error) {
	switch name {
	case "fpsgd", "":
		return fpsgdTrainer{}, nil
	case "hogwild":
		return hogwildTrainer{}, nil
	case "als":
		return alsTrainer{}, nil
	case "cd":
		return cdTrainer{}, nil
	}
	return nil, fmt.Errorf("hsgd: unknown trainer %q (want fpsgd|hogwild|als|cd)", name)
}

// NewSchedule returns the named learning-rate schedule starting at gamma:
// "fixed" (the paper's setting), "inverse" (Robbins-Monro γ0/(1+βt)), "chin"
// (the decay of Chin et al. [43]), or "bold" (bold driver, adapting to the
// observed loss — FPSGD feeds it at every epoch boundary).
func NewSchedule(name string, gamma float64) (Schedule, error) {
	g := float32(gamma)
	switch name {
	case "fixed", "":
		return sgd.FixedSchedule(g), nil
	case "inverse":
		return sgd.InverseDecay{Gamma0: g, Beta: 0.3}, nil
	case "chin":
		return sgd.ChinSchedule{Gamma0: g, Alpha: 20}, nil
	case "bold":
		return sgd.NewBoldDriver(g), nil
	}
	return nil, fmt.Errorf("hsgd: unknown schedule %q (want fixed|inverse|chin|bold)", name)
}

// LoadFactors reads a trained model (or mid-train checkpoint) written in the
// HFAC snapshot format — the resume half of the checkpoint pipeline.
func LoadFactors(path string) (*Factors, error) { return model.LoadFile(path) }

type fpsgdTrainer struct{}

func (fpsgdTrainer) Name() string { return "fpsgd" }

func (fpsgdTrainer) Train(train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := rejectInner("fpsgd", opt); err != nil {
		return nil, nil, err
	}
	rep, f, err := engine.Train(train, engine.Options{
		Threads:         opt.Threads,
		Params:          opt.Params,
		Schedule:        opt.Schedule,
		Seed:            opt.Seed,
		Test:            opt.Test,
		TargetRMSE:      opt.TargetRMSE,
		Init:            opt.Resume,
		StartEpoch:      opt.StartEpoch,
		CheckpointPath:  opt.CheckpointPath,
		CheckpointEvery: opt.CheckpointEvery,
	})
	if err != nil {
		return nil, nil, err
	}
	out := &TrainReport{
		Algorithm:    "fpsgd",
		Seconds:      rep.Seconds,
		Epochs:       rep.Epochs,
		FinalRMSE:    rep.FinalRMSE,
		TotalUpdates: rep.TotalUpdates,
		Checkpoints:  rep.Checkpoints,
	}
	for _, p := range rep.History {
		out.History = append(out.History, EvalPoint{Time: p.Time, Epoch: p.Epoch, RMSE: p.RMSE})
	}
	return out, f, nil
}

// rejectEngineOnly guards options only the FPSGD engine implements.
func rejectEngineOnly(name string, opt TrainOptions) error {
	if opt.CheckpointPath != "" || opt.Resume != nil || opt.StartEpoch != 0 {
		return fmt.Errorf("hsgd: trainer %q does not support checkpointing or resume (use fpsgd)", name)
	}
	return nil
}

// rejectSplitLambda guards trainers whose ridge solvers take one shared λ
// (ALS, CD): a differing LambdaQ would be silently ignored otherwise.
func rejectSplitLambda(name string, opt TrainOptions) error {
	if opt.Params.LambdaP != opt.Params.LambdaQ {
		return fmt.Errorf("hsgd: trainer %q uses a single regulariser; set LambdaP == LambdaQ (got %v/%v)",
			name, opt.Params.LambdaP, opt.Params.LambdaQ)
	}
	return nil
}

// rejectInner guards trainers other than CCD++: a nonzero InnerSweeps would
// be silently ignored otherwise.
func rejectInner(name string, opt TrainOptions) error {
	if opt.InnerSweeps != 0 {
		return fmt.Errorf("hsgd: trainer %q has no inner refinement sweeps; InnerSweeps is cd-only", name)
	}
	return nil
}

// rejectTarget guards trainers with no per-epoch evaluation loop: an early
// stopping target would be silently ignored otherwise.
func rejectTarget(name string, opt TrainOptions) error {
	if opt.TargetRMSE > 0 {
		return fmt.Errorf("hsgd: trainer %q does not support TargetRMSE early stopping (use fpsgd)", name)
	}
	return nil
}

// rejectSchedule guards trainers that take only a fixed gamma: a decaying or
// adaptive schedule would be silently ignored otherwise. The constant
// schedule is allowed — it is what they do anyway.
func rejectSchedule(name string, opt TrainOptions) error {
	if !sgd.IsFixed(opt.Schedule) {
		return fmt.Errorf("hsgd: trainer %q trains with a fixed gamma and cannot honor schedule %T (use fpsgd or hogwild)",
			name, opt.Schedule)
	}
	return nil
}

type hogwildTrainer struct{}

func (hogwildTrainer) Name() string { return "hogwild" }

func (hogwildTrainer) Train(train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := rejectEngineOnly("hogwild", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectInner("hogwild", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectTarget("hogwild", opt); err != nil {
		return nil, nil, err
	}
	if err := validateShared(opt); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rng)
	workers := opt.Threads
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Shuffle a copy so worker shards are unbiased without mutating the
	// caller's rating order.
	shuffled := train.Clone()
	shuffled.Shuffle(rng)
	start := time.Now()
	if opt.Schedule != nil {
		// Hogwild has no epoch barrier of its own; run one pass per Rate
		// step so decay schedules apply between passes, and feed adaptive
		// schedules (bold driver) the sampled training loss after each
		// pass, mirroring the engine's epoch-boundary Observe.
		observer, _ := opt.Schedule.(engine.LossObserver)
		var lossSample *Matrix
		if observer != nil {
			lossSample = engine.LossSample(shuffled)
		}
		p := opt.Params
		p.Iters = 1
		for it := 0; it < opt.Params.Iters; it++ {
			p.Gamma = opt.Schedule.Rate(it)
			sgd.TrainHogwild(shuffled, f, p, workers)
			if observer != nil {
				observer.Observe(model.RMSE(f, lossSample))
			}
		}
	} else {
		sgd.TrainHogwild(shuffled, f, opt.Params, workers)
	}
	return finishReport("hogwild", start, opt, f, int64(opt.Params.Iters)*int64(train.NNZ())), f, nil
}

type alsTrainer struct{}

func (alsTrainer) Name() string { return "als" }

func (alsTrainer) Train(train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := rejectEngineOnly("als", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectInner("als", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectTarget("als", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectSchedule("als", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectSplitLambda("als", opt); err != nil {
		return nil, nil, err
	}
	if err := validateShared(opt); err != nil {
		return nil, nil, err
	}
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	workers := opt.Threads
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	err := als.Train(train, f, als.Params{
		K:       opt.Params.K,
		Lambda:  opt.Params.LambdaP,
		Iters:   opt.Params.Iters,
		Workers: workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return finishReport("als", start, opt, f, 0), f, nil
}

type cdTrainer struct{}

func (cdTrainer) Name() string { return "cd" }

func (cdTrainer) Train(train *Matrix, opt TrainOptions) (*TrainReport, *Factors, error) {
	if err := rejectEngineOnly("cd", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectTarget("cd", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectSchedule("cd", opt); err != nil {
		return nil, nil, err
	}
	if err := rejectSplitLambda("cd", opt); err != nil {
		return nil, nil, err
	}
	if err := validateShared(opt); err != nil {
		return nil, nil, err
	}
	f := model.NewFactors(train.Rows, train.Cols, opt.Params.K, rand.New(rand.NewSource(opt.Seed)))
	start := time.Now()
	err := cd.Train(train, f, cd.Params{
		K:      opt.Params.K,
		Lambda: opt.Params.LambdaP,
		Iters:  opt.Params.Iters,
		Inner:  opt.InnerSweeps,
	})
	if err != nil {
		return nil, nil, err
	}
	return finishReport("cd", start, opt, f, 0), f, nil
}

func validateShared(opt TrainOptions) error {
	if opt.Params.K <= 0 || opt.Params.Iters <= 0 {
		return fmt.Errorf("hsgd: invalid params (k=%d iters=%d)", opt.Params.K, opt.Params.Iters)
	}
	return nil
}

func finishReport(alg string, start time.Time, opt TrainOptions, f *Factors, updates int64) *TrainReport {
	rep := &TrainReport{
		Algorithm:    alg,
		Seconds:      time.Since(start).Seconds(),
		Epochs:       opt.Params.Iters,
		TotalUpdates: updates,
	}
	if opt.Test != nil {
		rep.FinalRMSE = model.RMSE(f, opt.Test)
	}
	return rep
}
